package plan

import (
	"reflect"
	"testing"
)

// statsTable backs a PairStats from a dense selectivity-bucket matrix
// (bucket −1 marks an unknown pair).
func statsTable(selBucket [][]int, skewBucket [][]int) PairStats {
	return func(i, j int) (Workload, bool) {
		if selBucket[i][j] < 0 {
			return Workload{}, false
		}
		w := Workload{SelBucket: selBucket[i][j]}
		if skewBucket != nil {
			w.SkewBucket = skewBucket[i][j]
		}
		return w, true
	}
}

func TestOrderPipelineGreedy(t *testing.T) {
	// Three relations: a selective pair exists between 0 and 2, so the
	// greedy order starts there and leaves the wide join for last.
	rels := []PipeRel{{Tuples: 1000}, {Tuples: 1000}, {Tuples: 1000}}
	sel := [][]int{
		{0, 8, 1}, // build 0: probe 1 sel 1.0, probe 2 sel 0.125
		{8, 0, 8},
		{1, 8, 0}, // build 2: probe 0 sel 0.125
	}
	order, ordered := OrderPipeline(rels, statsTable(sel, nil))
	if !ordered {
		t.Fatal("ordered = false with full statistics")
	}
	// Both (0,2) and (2,0) estimate 125 output tuples; equal cost breaks
	// the tie toward declaration order, so build 0 probes 2 first.
	if want := []int{0, 2, 1}; !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestOrderPipelineSizeTieBreak(t *testing.T) {
	// Uniform selectivity 1.0 everywhere: output estimates equal the probe
	// size, so the smallest relation is probed first; the build side of
	// that first step is then the cheaper of the remaining two.
	rels := []PipeRel{{Tuples: 4000}, {Tuples: 100}, {Tuples: 900}}
	sel := [][]int{{0, 8, 8}, {8, 0, 8}, {8, 8, 0}}
	order, ordered := OrderPipeline(rels, statsTable(sel, nil))
	if !ordered {
		t.Fatal("ordered = false with full statistics")
	}
	if want := []int{2, 1, 0}; !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestOrderPipelineSkewPenalty(t *testing.T) {
	// The selective pair runs first in its cheaper direction (probing the
	// 100-tuple side). Two equal-size, equal-selectivity candidates remain
	// for the next probe; relation 2's pair stats report high skew, so 3
	// goes first.
	rels := []PipeRel{{Tuples: 100}, {Tuples: 200}, {Tuples: 500}, {Tuples: 500}}
	sel := [][]int{
		{0, 4, 8, 8},
		{4, 0, 8, 8},
		{8, 8, 0, 8},
		{8, 8, 8, 0},
	}
	skew := [][]int{
		{0, 0, 2, 0},
		{0, 0, 2, 0},
		{0, 0, 0, 0},
		{0, 0, 0, 0},
	}
	order, ordered := OrderPipeline(rels, statsTable(sel, skew))
	if !ordered {
		t.Fatal("ordered = false with full statistics")
	}
	if want := []int{1, 0, 3, 2}; !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

// TestOrderPipelineHeavyCollision: the most selective pair on paper joins
// two heavy-key relations — a quadratic blowup (share_B·|B| × share_C·|C|
// output tuples) the selectivity bucket cannot see. With heavy shares the
// orderer defers that pair; without them (the control) it would lead with
// it.
func TestOrderPipelineHeavyCollision(t *testing.T) {
	rels := []PipeRel{
		{Tuples: 10000},                  // A: uniform build
		{Tuples: 2000, HeavyShare: 0.25}, // B: hc = 500
		{Tuples: 800, HeavyShare: 0.25},  // C: hc = 200
	}
	sel := [][]int{
		{0, 8, 8},
		{8, 0, 1}, // B ⋈ C looks maximally selective...
		{8, 1, 0}, // ...in both directions
	}
	order, ordered := OrderPipeline(rels, statsTable(sel, nil))
	if !ordered {
		t.Fatal("ordered = false with full statistics")
	}
	// A ⋈ C (est 800 + 1·200) beats B ⋈ C (est 100 + 500·200 = 100100).
	if want := []int{0, 2, 1}; !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v (heavy collision not priced)", order, want)
	}

	// Control: identical sizes and selectivities, no heavy shares — the
	// sel-bucket estimate alone picks the explosive pair first.
	uniform := []PipeRel{{Tuples: 10000}, {Tuples: 2000}, {Tuples: 800}}
	order, _ = OrderPipeline(uniform, statsTable(sel, nil))
	if order[0] != 1 || order[1] != 2 {
		t.Errorf("control order = %v, want the B ⋈ C prefix", order)
	}
}

func TestOrderPipelineFallsBackWithoutStats(t *testing.T) {
	rels := []PipeRel{{Tuples: 10}, {Tuples: 20}, {Tuples: 30}}
	sel := [][]int{
		{0, 8, -1}, // pair (0,2) unknown
		{8, 0, 8},
		{8, 8, 0},
	}
	order, ordered := OrderPipeline(rels, statsTable(sel, nil))
	if ordered {
		t.Error("ordered = true with a missing pair")
	}
	if want := []int{0, 1, 2}; !reflect.DeepEqual(order, want) {
		t.Errorf("fallback order = %v, want declaration %v", order, want)
	}
	// No stats function at all behaves the same.
	order, ordered = OrderPipeline(rels, nil)
	if ordered || !reflect.DeepEqual(order, []int{0, 1, 2}) {
		t.Errorf("nil stats: order %v ordered %v, want declaration and false", order, ordered)
	}
}

// TestOrderPipelinePairSwap: with two relations the orderer may still swap
// build and probe when the reversed direction estimates cheaper.
func TestOrderPipelinePairSwap(t *testing.T) {
	rels := []PipeRel{{Tuples: 100}, {Tuples: 5000}}
	sel := [][]int{{0, 8}, {8, 0}}
	order, ordered := OrderPipeline(rels, statsTable(sel, nil))
	if !ordered {
		t.Fatal("ordered = false with full statistics")
	}
	// Probing the 100-tuple side estimates 100 output tuples vs 5000.
	if want := []int{1, 0}; !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

// TestOrderPipelineEstEstimates: the est slice reports exactly what the
// greedy search minimized — one estimated match count per step, in
// executed order — and is absent when the orderer falls back.
func TestOrderPipelineEstEstimates(t *testing.T) {
	rels := []PipeRel{{Tuples: 1000}, {Tuples: 1000}, {Tuples: 1000}}
	sel := [][]int{
		{0, 8, 1},
		{8, 0, 8},
		{1, 8, 0},
	}
	order, ests, ordered := OrderPipelineEst(rels, statsTable(sel, nil))
	if !ordered {
		t.Fatal("ordered = false with full statistics")
	}
	if want := []int{0, 2, 1}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if len(ests) != len(rels)-1 {
		t.Fatalf("%d estimates for %d steps", len(ests), len(rels)-1)
	}
	// Step 1 probes relation 2 at selectivity 1/8 of its 1000 tuples,
	// plus the uniform collision baseline.
	if ests[0] != 126 {
		t.Errorf("first step estimate %v, want 126", ests[0])
	}
	for i, e := range ests {
		if e <= 0 {
			t.Errorf("estimate %d = %v, want > 0", i, e)
		}
	}

	_, ests, ordered = OrderPipelineEst(rels, nil)
	if ordered || ests != nil {
		t.Errorf("nil stats: ests %v ordered %v, want nil and false", ests, ordered)
	}
}

// TestOrderRemainingReorders: mid-pipeline, with the intermediate's
// cardinality now observed rather than estimated, the greedy tail places
// the selective probe before the wide one — and anchors its estimates on
// the observed count.
func TestOrderRemainingReorders(t *testing.T) {
	rels := []PipeRel{{Tuples: 1000}, {Tuples: 1000}, {Tuples: 1000}}
	// Declared wide-first: pair (0,1) is selectivity 1.0, (0,2) is 1/8,
	// and the remaining pairs are all 1.0.
	sel := [][]int{
		{0, 8, 1},
		{8, 0, 8},
		{1, 8, 0},
	}
	stats := statsTable(sel, nil)

	order, ests, ordered := OrderRemaining(PipeRel{Tuples: 400}, rels, []int{0}, []int{1, 2}, stats)
	if !ordered {
		t.Fatal("ordered = false with full statistics")
	}
	if want := []int{2, 1}; !reflect.DeepEqual(order, want) {
		t.Fatalf("reordered tail = %v, want %v", order, want)
	}
	if len(ests) != 2 {
		t.Fatalf("%d estimates for 2 steps", len(ests))
	}
	// Selectivity 1/8 of relation 2's 1000 tuples plus the uniform
	// collision baseline — the same arithmetic OrderPipelineEst reports.
	if ests[0] != 126 {
		t.Errorf("first tail estimate %v, want 126", ests[0])
	}

	// A single remaining step has nothing to reorder.
	order, ests, ordered = OrderRemaining(PipeRel{Tuples: 400}, rels, []int{0, 2}, []int{1}, stats)
	if ordered || ests != nil || !reflect.DeepEqual(order, []int{1}) {
		t.Errorf("1-step tail: order %v ests %v ordered %v, want {1}, nil, false", order, ests, ordered)
	}
}

// TestOrderRemainingFallsBack: one unknown pair among the consulted
// (done ∪ remaining, remaining) combinations keeps the current order,
// exactly as OrderPipeline falls back to declaration order; pairs wholly
// in the past are never consulted.
func TestOrderRemainingFallsBack(t *testing.T) {
	rels := []PipeRel{{Tuples: 10}, {Tuples: 20}, {Tuples: 30}, {Tuples: 40}}
	sel := [][]int{
		{0, -1, 8, 8}, // (0,1) unknown — but 1 is already consumed
		{-1, 0, 8, 8},
		{8, 8, 0, 8},
		{8, 8, 8, 0},
	}
	order, _, ordered := OrderRemaining(PipeRel{Tuples: 100}, rels, []int{0, 1}, []int{2, 3}, statsTable(sel, nil))
	if !ordered {
		t.Error("an unknown pair between two consumed sources must not matter")
	}
	if want := []int{2, 3}; !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}

	sel[0][2], sel[2][0] = -1, -1 // now a consulted (done, remaining) pair is unknown
	order, ests, ordered := OrderRemaining(PipeRel{Tuples: 100}, rels, []int{0, 1}, []int{2, 3}, statsTable(sel, nil))
	if ordered || ests != nil {
		t.Error("unknown consulted pair must fall back to the current order")
	}
	if want := []int{2, 3}; !reflect.DeepEqual(order, want) {
		t.Errorf("fallback order = %v, want the given remaining %v", order, want)
	}
}
