package plan

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"apujoin/internal/core"
)

// DefaultCacheCapacity bounds the plan cache when the caller passes no
// capacity. Each entry is a few KB of profiles and ratios, so the default
// is generous for any realistic mix of workload shapes.
const DefaultCacheCapacity = 128

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Capacity  int   `json:"capacity"`
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Observations counts executions whose predicted-vs-simulated error was
	// written back onto a resident entry via Observe; MeanObservedErr is the
	// mean relative error |predicted−simulated|/simulated over them. The
	// counters survive the entries they were recorded against (an evicted
	// entry's observations stay in the aggregate).
	Observations    int64   `json:"observations"`
	MeanObservedErr float64 `json:"mean_observed_err"`
}

// entry is one cached plan keyed by its fingerprint.
type entry struct {
	fp   Fingerprint
	plan *core.Plan
	// obsCount and obsRelErr accumulate the entry's observed prediction
	// error: executions recorded and summed relative error. They feed the
	// cache-level aggregate and let callers inspect how trustworthy this
	// shape's predictions have proven.
	obsCount  int64
	obsRelErr float64
}

// flight is one in-progress plan build; concurrent requests for the same
// fingerprint wait on done instead of running their own pilot.
type flight struct {
	done chan struct{}
	plan *core.Plan
	err  error
}

// Cache is a bounded LRU of execution plans, safe for concurrent use.
// Concurrent misses on one fingerprint are coalesced: exactly one caller
// runs the build (the pilot plus the candidate searches) while the rest
// wait for its result, so a burst of identical queries onto a cold cache
// pays for one pilot, not N.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	entries   map[Fingerprint]*list.Element
	lru       *list.List // front = most recently used
	inflight  map[Fingerprint]*flight
	hits      int64
	misses    int64
	evictions int64
	// observations / observedErr aggregate Observe calls across all
	// entries, including since-evicted ones.
	observations int64
	observedErr  float64
}

// NewCache returns an empty cache holding at most capacity plans;
// capacity <= 0 selects DefaultCacheCapacity.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		capacity: capacity,
		entries:  make(map[Fingerprint]*list.Element),
		lru:      list.New(),
		inflight: make(map[Fingerprint]*flight),
	}
}

// Get returns the cached plan for fp, marking it most recently used.
func (c *Cache) Get(fp Fingerprint) (*core.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[fp]
	if !ok {
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return el.Value.(*entry).plan, true
}

// Put inserts (or refreshes) a plan, evicting the least recently used
// entries beyond capacity.
func (c *Cache) Put(fp Fingerprint, pl *core.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(fp, pl)
}

func (c *Cache) putLocked(fp Fingerprint, pl *core.Plan) {
	if el, ok := c.entries[fp]; ok {
		el.Value.(*entry).plan = pl
		c.lru.MoveToFront(el)
		return
	}
	c.entries[fp] = c.lru.PushFront(&entry{fp: fp, plan: pl})
	for len(c.entries) > c.capacity {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*entry).fp)
		c.evictions++
	}
}

// GetOrBuild returns the plan for fp, building and caching it on a miss.
// hit reports whether the caller was served without running build itself —
// true both for a resident entry and for a request coalesced onto another
// caller's in-flight build (either way this caller paid no pilot). Build
// errors are returned to every coalesced caller and nothing is cached, so
// a transient failure does not poison the fingerprint.
//
// ctx bounds the wait, not the work: a coalesced caller stops waiting
// when ctx is cancelled, and a cancelled caller never starts a build, but
// a build already running completes and is cached — its result serves
// every later query of the shape regardless of who first asked for it.
func (c *Cache) GetOrBuild(ctx context.Context, fp Fingerprint, build func() (*core.Plan, error)) (pl *core.Plan, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[fp]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		pl = el.Value.(*entry).plan
		c.mu.Unlock()
		return pl, true, nil
	}
	if fl, ok := c.inflight[fp]; ok {
		c.mu.Unlock()
		select {
		case <-fl.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if fl.err != nil {
			return nil, false, fl.err
		}
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return fl.plan, true, nil
	}
	if err := ctx.Err(); err != nil {
		c.mu.Unlock()
		return nil, false, err
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[fp] = fl
	c.misses++
	c.mu.Unlock()

	defer func() {
		if fl.plan == nil && fl.err == nil {
			// build panicked; unblock waiters with an error.
			fl.err = fmt.Errorf("plan: build for %v aborted", fp)
		}
		c.mu.Lock()
		delete(c.inflight, fp)
		if fl.err == nil {
			c.putLocked(fp, fl.plan)
		}
		c.mu.Unlock()
		close(fl.done)
	}()
	fl.plan, fl.err = build()
	return fl.plan, false, fl.err
}

// Observe writes one execution's predicted-vs-simulated error back onto
// the entry for fp: predictedNS is the plan's estimate, simulatedNS the
// simulated time the execution actually produced. The relative error
// accumulates on the entry and in the cache-wide aggregate, closing the
// loop the planner previously left open (the error stat existed but
// nothing recorded it against the plan that made the prediction).
// Observing neither promotes the entry in the LRU nor counts as a hit —
// it is feedback, not use. ok reports whether the entry was still
// resident; observations of evicted fingerprints are dropped.
func (c *Cache) Observe(fp Fingerprint, predictedNS, simulatedNS float64) (ok bool) {
	if simulatedNS <= 0 {
		return false
	}
	relErr := (predictedNS - simulatedNS) / simulatedNS
	if relErr < 0 {
		relErr = -relErr
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, present := c.entries[fp]
	if !present {
		return false
	}
	e := el.Value.(*entry)
	e.obsCount++
	e.obsRelErr += relErr
	c.observations++
	c.observedErr += relErr
	return true
}

// Len returns the number of resident plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		Capacity:     c.capacity,
		Entries:      len(c.entries),
		Hits:         c.hits,
		Misses:       c.misses,
		Evictions:    c.evictions,
		Observations: c.observations,
	}
	if c.observations > 0 {
		st.MeanObservedErr = c.observedErr / float64(c.observations)
	}
	return st
}
