package plan

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"apujoin/internal/core"
	"apujoin/internal/mem"
	"apujoin/internal/rel"
)

func testOptions() core.Options {
	return core.Options{Delta: 0.1, PilotItems: 1 << 12}
}

func testData(n int, seed int64, dist rel.Distribution, sel float64) (rel.Relation, rel.Relation) {
	r := rel.Gen{N: n, Dist: dist, Seed: seed}.Build()
	s := rel.Gen{N: n, Dist: dist, Seed: seed + 1}.Probe(r, sel)
	return r, s
}

func fpOf(n int, seed int64, dist rel.Distribution, sel float64, opt core.Options) Fingerprint {
	r, s := testData(n, seed, dist, sel)
	return Of(r, s, opt)
}

// TestFingerprintStability: equivalent relations — same shape, sizes, skew
// and selectivity, different generation seeds — must fingerprint
// identically, while a change in any workload dimension must not.
func TestFingerprintStability(t *testing.T) {
	opt := testOptions()
	base := fpOf(1<<15, 1, rel.Uniform, 0.75, opt)
	for seed := int64(2); seed < 6; seed++ {
		if fp := fpOf(1<<15, seed, rel.Uniform, 0.75, opt); fp != base {
			t.Fatalf("seed %d changed the fingerprint:\n%+v\nvs\n%+v", seed, fp, base)
		}
	}

	variants := map[string]Fingerprint{
		"skew":        fpOf(1<<15, 1, rel.HighSkew, 0.75, opt),
		"selectivity": fpOf(1<<15, 1, rel.Uniform, 0.1, opt),
		"size":        fpOf(1<<14, 1, rel.Uniform, 0.75, opt),
	}
	for name, fp := range variants {
		if fp == base {
			t.Errorf("%s variant fingerprints like the base workload: %+v", name, base)
		}
	}

	// The three generator distributions land in the three skew buckets.
	low := fpOf(1<<15, 1, rel.LowSkew, 0.75, opt)
	high := fpOf(1<<15, 1, rel.HighSkew, 0.75, opt)
	if base.SkewBucket != 0 || low.SkewBucket != 1 || high.SkewBucket != 2 {
		t.Errorf("skew buckets uniform=%d low=%d high=%d, want 0/1/2",
			base.SkewBucket, low.SkewBucket, high.SkewBucket)
	}

	// Option knobs that shape the plan must be part of the key.
	sep := opt
	sep.SeparateTables = true
	r, s := testData(1<<15, 1, rel.Uniform, 0.75)
	if Of(r, s, sep) == Of(r, s, opt) {
		t.Error("SeparateTables not reflected in the fingerprint")
	}
	halfCache := opt
	halfCache.Cache = mem.NewCacheModel()
	halfCache.Cache.SizeBytes /= 2
	if Of(r, s, halfCache) == Of(r, s, opt) {
		t.Error("cache model not reflected in the fingerprint")
	}
}

// TestCacheLRU: bounded capacity, least-recently-used eviction, counter
// accounting.
func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	fps := make([]Fingerprint, 3)
	for i := range fps {
		fps[i] = Fingerprint{R: i + 1}
	}
	pl := &core.Plan{}

	c.Put(fps[0], pl)
	c.Put(fps[1], pl)
	if _, ok := c.Get(fps[0]); !ok { // touch 0 → 1 becomes LRU
		t.Fatal("entry 0 missing before eviction")
	}
	c.Put(fps[2], pl) // evicts 1
	if _, ok := c.Get(fps[1]); ok {
		t.Fatal("entry 1 survived eviction of a full cache")
	}
	if _, ok := c.Get(fps[0]); !ok {
		t.Fatal("recently used entry 0 was evicted")
	}
	if _, ok := c.Get(fps[2]); !ok {
		t.Fatal("newest entry 2 missing")
	}

	st := c.Stats()
	if st.Capacity != 2 || st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats %+v, want capacity 2, entries 2, evictions 1", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("stats %+v, want 3 hits, 1 miss", st)
	}
}

// TestCacheConcurrent: hammer one cache from many goroutines across a few
// fingerprints with a capacity that forces constant eviction — run under
// -race in CI. Every caller must observe the plan its fingerprint maps to,
// and the build count must equal the recorded misses (concurrent misses on
// one fingerprint coalesce onto a single build).
func TestCacheConcurrent(t *testing.T) {
	const (
		workers      = 8
		perWorker    = 50
		fingerprints = 4
	)
	c := NewCache(2) // smaller than the working set: constant eviction
	var builds [fingerprints]atomic.Int64

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := (w + i) % fingerprints
				fp := Fingerprint{R: k + 1}
				pl, _, err := c.GetOrBuild(context.Background(), fp, func() (*core.Plan, error) {
					builds[k].Add(1)
					return &core.Plan{PredictedNS: float64(k + 1)}, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if pl.PredictedNS != float64(k+1) {
					t.Errorf("fingerprint %d served plan %v", k, pl.PredictedNS)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var total int64
	for k := range builds {
		total += builds[k].Load()
	}
	st := c.Stats()
	if total != st.Misses {
		t.Fatalf("%d builds but %d recorded misses", total, st.Misses)
	}
	if st.Hits+st.Misses != workers*perWorker {
		t.Fatalf("hits %d + misses %d ≠ %d requests", st.Hits, st.Misses, workers*perWorker)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions with capacity below the working set")
	}
}

// TestCacheBuildError: a failed build is returned, never cached, and does
// not poison the fingerprint for later successful builds.
func TestCacheBuildError(t *testing.T) {
	c := NewCache(4)
	fp := Fingerprint{R: 1}
	boom := fmt.Errorf("boom")
	if _, _, err := c.GetOrBuild(context.Background(), fp, func() (*core.Plan, error) { return nil, boom }); err != boom {
		t.Fatalf("err %v, want %v", err, boom)
	}
	if c.Len() != 0 {
		t.Fatal("failed build was cached")
	}
	pl, hit, err := c.GetOrBuild(context.Background(), fp, func() (*core.Plan, error) { return &core.Plan{}, nil })
	if err != nil || hit || pl == nil {
		t.Fatalf("recovery build: pl=%v hit=%v err=%v", pl, hit, err)
	}
}

// TestCacheWaitCancellation: a coalesced waiter stops waiting when its
// context is cancelled mid-build, a cancelled caller never starts a build,
// and the in-flight build still completes and serves later callers.
func TestCacheWaitCancellation(t *testing.T) {
	c := NewCache(4)
	fp := Fingerprint{R: 1}
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _, _ = c.GetOrBuild(context.Background(), fp, func() (*core.Plan, error) {
			close(started)
			<-release
			return &core.Plan{PredictedNS: 1}, nil
		})
	}()
	<-started

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.GetOrBuild(cancelled, fp, func() (*core.Plan, error) {
		t.Error("coalesced waiter ran a build")
		return nil, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err %v, want context.Canceled", err)
	}
	if _, _, err := c.GetOrBuild(cancelled, Fingerprint{R: 2}, func() (*core.Plan, error) {
		t.Error("cancelled caller started a build")
		return nil, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled miss err %v, want context.Canceled", err)
	}

	close(release)
	pl, hit, err := c.GetOrBuild(context.Background(), fp, func() (*core.Plan, error) {
		t.Error("build re-ran after completed flight")
		return nil, nil
	})
	if err != nil || !hit || pl.PredictedNS != 1 {
		t.Fatalf("post-release lookup: pl=%+v hit=%v err=%v", pl, hit, err)
	}
}

// TestPlannerAmortizes: the first query of a shape misses and builds; every
// equivalent query afterwards — including ones generated from different
// seeds — hits and reuses the identical plan instance.
func TestPlannerAmortizes(t *testing.T) {
	p := New(8)
	opt := testOptions()

	r1, s1 := testData(1<<14, 1, rel.Uniform, 1.0)
	pl1, _, hit, err := p.Plan(context.Background(), r1, s1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("cold planner reported a hit")
	}

	r2, s2 := testData(1<<14, 99, rel.Uniform, 1.0)
	pl2, _, hit, err := p.Plan(context.Background(), r2, s2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("equivalent workload missed the cache")
	}
	if pl1 != pl2 {
		t.Fatal("hit returned a different plan instance")
	}
	if st := p.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss", st)
	}
}

// TestAutoPlannedBitIdentical: running a query through the planner (cache
// miss, then cache hit) yields results bit-identical to injecting an
// explicitly built plan — the cache mediation changes nothing.
func TestAutoPlannedBitIdentical(t *testing.T) {
	p := New(4)
	opt := testOptions()
	r, s := testData(1<<15, 3, rel.LowSkew, 0.5)

	runWith := func(pl *core.Plan) *core.Result {
		o := opt
		o.Plan = pl
		res, err := core.Run(r, s, o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plMiss, _, _, err := p.Plan(context.Background(), r, s, opt)
	if err != nil {
		t.Fatal(err)
	}
	auto := runWith(plMiss)

	plHit, _, hit, err := p.Plan(context.Background(), r, s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second plan lookup missed")
	}
	cached := runWith(plHit)

	explicitPlan, err := core.BuildPlan(r, s, opt)
	if err != nil {
		t.Fatal(err)
	}
	explicit := runWith(explicitPlan)

	for _, got := range []struct {
		name string
		res  *core.Result
	}{{"cache hit", cached}, {"explicit plan", explicit}} {
		if auto.Matches != got.res.Matches ||
			auto.TotalNS != got.res.TotalNS ||
			auto.EstimatedNS != got.res.EstimatedNS ||
			!reflect.DeepEqual(auto.Breakdown, got.res.Breakdown) ||
			!reflect.DeepEqual(auto.Ratios, got.res.Ratios) {
			t.Fatalf("%s run differs from auto-planned run:\nmatches %d vs %d, total %v vs %v",
				got.name, auto.Matches, got.res.Matches, auto.TotalNS, got.res.TotalNS)
		}
	}
	if want := rel.NaiveJoinCount(r, s); auto.Matches != want {
		t.Fatalf("auto-planned run: %d matches, want %d", auto.Matches, want)
	}
}

// TestCacheObserve: Observe writes a prediction's relative error back onto
// a resident entry — feedback, not use, so it must neither promote the
// entry in LRU order nor resurrect an evicted fingerprint — and the
// aggregate counters survive eviction of the entries that produced them.
func TestCacheObserve(t *testing.T) {
	c := NewCache(2)
	a, b, d := Fingerprint{R: 1}, Fingerprint{R: 2}, Fingerprint{R: 3}
	pl := &core.Plan{}

	if c.Observe(a, 100, 100) {
		t.Fatal("Observe succeeded on a fingerprint never cached")
	}
	c.Put(a, pl)
	c.Put(b, pl)
	if !c.Observe(a, 150, 100) {
		t.Fatal("Observe failed on a resident entry")
	}
	if c.Observe(a, 150, 0) {
		t.Fatal("Observe accepted a non-positive simulated time")
	}
	st := c.Stats()
	if st.Observations != 1 || st.MeanObservedErr != 0.5 {
		t.Fatalf("stats %+v, want 1 observation at mean error 0.5", st)
	}
	// Underprediction counts by magnitude: |50−100|/100 = 0.5 again.
	if !c.Observe(b, 50, 100) {
		t.Fatal("Observe failed on entry b")
	}
	if st := c.Stats(); st.Observations != 2 || st.MeanObservedErr != 0.5 {
		t.Fatalf("stats %+v, want 2 observations at mean error 0.5", st)
	}

	// Observing a is not a use: b was Put later, so a is still the LRU
	// victim when d arrives.
	c.Put(d, pl)
	if _, ok := c.Get(a); ok {
		t.Fatal("observed-but-unused entry a survived eviction")
	}
	if c.Observe(a, 100, 100) {
		t.Fatal("Observe succeeded on an evicted fingerprint")
	}
	// The aggregate keeps the evicted entry's observations.
	if st := c.Stats(); st.Observations != 2 || st.MeanObservedErr != 0.5 {
		t.Fatalf("stats after eviction %+v, want the 2 observations retained", st)
	}
}

// TestCacheStatsJSON pins the wire names the service's /v1/stats handler
// re-exports: the observation counters must marshal under observations
// and mean_observed_err.
func TestCacheStatsJSON(t *testing.T) {
	c := NewCache(2)
	fp := Fingerprint{R: 9}
	c.Put(fp, &core.Plan{})
	c.Observe(fp, 120, 100)
	raw, err := json.Marshal(c.Stats())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["observations"] != float64(1) {
		t.Errorf("observations = %v, want 1 (payload %s)", m["observations"], raw)
	}
	if got, want := m["mean_observed_err"].(float64), 0.2; got < want-1e-12 || got > want+1e-12 {
		t.Errorf("mean_observed_err = %v, want %v", got, want)
	}
}
