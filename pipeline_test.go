package apujoin

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"apujoin/internal/catalog"
	"apujoin/internal/oracle"
	"apujoin/internal/rel"
	"apujoin/internal/service"
)

// pipelineFixture registers the three-relation workload the pipeline tests
// share: a build side, a wide selectivity-1 probe and a narrow selective
// probe, so the cost-based orderer has a real choice to make.
func pipelineFixture(t *testing.T, eng *Engine) (rels []Relation) {
	t.Helper()
	specs := []struct {
		name string
		of   string
		gen  Gen
		sel  float64
	}{
		{name: "orders", gen: Gen{N: 30000, Seed: 11}},
		{name: "lineitem", of: "orders", gen: Gen{N: 40000, Dist: LowSkew, Seed: 12}, sel: 1.0},
		{name: "returns", of: "orders", gen: Gen{N: 20000, Seed: 13}, sel: 0.2},
	}
	for _, sp := range specs {
		var err error
		if sp.of == "" {
			_, err = eng.Register(sp.name, sp.gen)
		} else {
			_, err = eng.RegisterProbe(sp.name, sp.of, sp.gen, sp.sel)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	build := specs[0].gen.Build()
	return []Relation{
		build,
		specs[1].gen.Probe(build, specs[1].sel),
		specs[2].gen.Probe(build, specs[2].sel),
	}
}

var pipelineTestOpts = []JoinOption{WithDelta(0.1), WithPilotItems(1 << 10)}

// TestPipelineMatchesManualChain is the PR's acceptance contract: a
// 3-relation pipeline's final Result is bit-identical to manually chaining
// pairwise Join calls in the chosen order — with the intermediates
// materialized by hand — for worker counts 1 and GOMAXPROCS, under both an
// explicit configuration and the auto planner; and the final match count
// equals the brute-force multi-way oracle.
func TestPipelineMatchesManualChain(t *testing.T) {
	modes := []struct {
		name string
		opts []JoinOption
	}{
		{"explicit PHJ-DD", append([]JoinOption{WithAlgo(PHJ), WithScheme(DD)}, pipelineTestOpts...)},
		{"auto", append([]JoinOption{WithAuto()}, pipelineTestOpts...)},
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		eng := NewEngine(Workers(workers))
		defer eng.Close()
		rels := pipelineFixture(t, eng)
		want := oracle.PipelineCount(rels)
		ctx := context.Background()
		for _, m := range modes {
			t.Run(m.name, func(t *testing.T) {
				pr, err := eng.JoinPipeline(ctx, Pipeline{Sources: []Source{
					Ref("orders"), Ref("lineitem"), Ref("returns"),
				}}, m.opts...)
				if err != nil {
					t.Fatal(err)
				}
				if pr.Final.Matches != want {
					t.Errorf("workers=%d: pipeline matches %d, want oracle %d", workers, pr.Final.Matches, want)
				}
				if !pr.Ordered {
					t.Error("all-catalog pipeline was not cost-ordered")
				}
				// The wide selectivity-1 join (orders ⋈ lineitem) must not
				// run first: any other pair estimates a smaller intermediate.
				if pr.Order[0] == 0 && pr.Order[1] == 1 {
					t.Errorf("orderer kept the worst-first declaration prefix: %v", pr.Order)
				}
				if len(pr.Steps) != 2 || pr.Steps[len(pr.Steps)-1].Result != pr.Final {
					t.Fatalf("steps = %d, final not last step's result", len(pr.Steps))
				}

				// Manual chain in the chosen order, same options per step.
				cur := rels[pr.Order[0]]
				var final *Result
				for i := 1; i < len(pr.Order); i++ {
					probe := rels[pr.Order[i]]
					res, err := eng.Join(ctx, Inline(cur), Inline(probe), m.opts...)
					if err != nil {
						t.Fatalf("manual step %d: %v", i, err)
					}
					final = res
					if i < len(pr.Order)-1 {
						cur = rel.JoinMaterialize(cur, probe)
					}
				}
				if !reflect.DeepEqual(pr.Final, final) {
					t.Errorf("workers=%d: pipeline final Result differs from the manual chain", workers)
				}
				// Per-step results match the manual chain's counts too.
				if pr.Steps[0].OutTuples != int64(rel.JoinMaterialize(rels[pr.Order[0]], rels[pr.Order[1]]).Len()) {
					t.Errorf("step 0 out tuples %d disagree with materialization", pr.Steps[0].OutTuples)
				}
			})
		}
	}
}

// TestPipelineWorkersInvariance mirrors core.TestWorkersInvariance at the
// pipeline level: the entire PipelineResult — order, every step's Result,
// every simulated number — is bit-identical between a 1-worker and a
// GOMAXPROCS engine.
func TestPipelineWorkersInvariance(t *testing.T) {
	results := make([]*PipelineResult, 0, 2)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		eng := NewEngine(Workers(workers))
		pipelineFixture(t, eng)
		pr, err := eng.JoinPipeline(context.Background(), Pipeline{Sources: []Source{
			Ref("orders"), Ref("lineitem"), Ref("returns"),
		}}, append([]JoinOption{WithAuto()}, pipelineTestOpts...)...)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, pr)
		eng.Close()
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Error("PipelineResult differs between 1 worker and GOMAXPROCS")
	}
}

// TestPipelineStreamedMatchesMaterialized is the streamed path's acceptance
// contract: for worker counts 1 and GOMAXPROCS, a pipeline run with the
// default streamed hand-off is bit-identical — order, every step's Result,
// Final, TotalNS — to the same pipeline run with Materialize set, while its
// peak resident intermediate footprint is strictly below the materialized
// path's. Each run uses a fresh engine so both plan against a cold cache.
func TestPipelineStreamedMatchesMaterialized(t *testing.T) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		prs := make(map[bool]*PipelineResult)
		for _, materialize := range []bool{false, true} {
			eng := NewEngine(Workers(workers))
			pipelineFixture(t, eng)
			pr, err := eng.JoinPipeline(context.Background(), Pipeline{
				Sources:     []Source{Ref("orders"), Ref("lineitem"), Ref("returns")},
				Materialize: materialize,
			}, append([]JoinOption{WithAuto()}, pipelineTestOpts...)...)
			eng.Close()
			if err != nil {
				t.Fatal(err)
			}
			if pr.Streamed == materialize {
				t.Errorf("workers=%d materialize=%v: Streamed=%v", workers, materialize, pr.Streamed)
			}
			prs[materialize] = pr
		}
		st, mat := prs[false], prs[true]
		if !reflect.DeepEqual(st.Order, mat.Order) {
			t.Fatalf("workers=%d: order differs: streamed %v, materialized %v", workers, st.Order, mat.Order)
		}
		for i := range st.Steps {
			if !reflect.DeepEqual(st.Steps[i].Result, mat.Steps[i].Result) {
				t.Errorf("workers=%d step %d: Result differs between streamed and materialized", workers, i)
			}
		}
		if !reflect.DeepEqual(st.Final, mat.Final) {
			t.Errorf("workers=%d: Final differs between streamed and materialized", workers)
		}
		if st.TotalNS != mat.TotalNS {
			t.Errorf("workers=%d: TotalNS %.0f (streamed) != %.0f (materialized)", workers, st.TotalNS, mat.TotalNS)
		}
		if st.IntermediateTuples != mat.IntermediateTuples || st.IntermediateBytes != mat.IntermediateBytes {
			t.Errorf("workers=%d: intermediate totals differ: streamed %d/%d, materialized %d/%d", workers,
				st.IntermediateTuples, st.IntermediateBytes, mat.IntermediateTuples, mat.IntermediateBytes)
		}
		if st.PeakIntermediateBytes <= 0 {
			t.Errorf("workers=%d: streamed peak %d, want > 0", workers, st.PeakIntermediateBytes)
		}
		if st.PeakIntermediateBytes >= mat.PeakIntermediateBytes {
			t.Errorf("workers=%d: streamed peak %d not strictly below materialized peak %d",
				workers, st.PeakIntermediateBytes, mat.PeakIntermediateBytes)
		}
	}
}

// TestPipelineColdWarmPlanCacheInvariance: an auto pipeline is bit-identical
// whether its steps plan against a cold or a warm plan cache — the second
// run hits the cache (observably) and changes nothing else.
func TestPipelineColdWarmPlanCacheInvariance(t *testing.T) {
	eng := NewEngine()
	defer eng.Close()
	pipelineFixture(t, eng)
	opts := append([]JoinOption{WithAuto()}, pipelineTestOpts...)
	p := Pipeline{Sources: []Source{Ref("orders"), Ref("lineitem"), Ref("returns")}}

	cold, err := eng.JoinPipeline(context.Background(), p, opts...)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := eng.JoinPipeline(context.Background(), p, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold.Steps {
		if cold.Steps[i].Plan == nil || warm.Steps[i].Plan == nil {
			t.Fatalf("step %d: missing plan info on an auto pipeline", i)
		}
		if cold.Steps[i].Plan.CacheHit {
			t.Errorf("step %d: cold run reported a cache hit", i)
		}
		if !warm.Steps[i].Plan.CacheHit {
			t.Errorf("step %d: warm run missed the cache", i)
		}
		if !reflect.DeepEqual(cold.Steps[i].Result, warm.Steps[i].Result) {
			t.Errorf("step %d: Result differs between cold and warm plan cache", i)
		}
	}
	if !reflect.DeepEqual(cold.Final, warm.Final) {
		t.Error("final Result differs between cold and warm plan cache")
	}
	if cold.TotalNS != warm.TotalNS {
		t.Errorf("TotalNS %.0f (cold) != %.0f (warm)", cold.TotalNS, warm.TotalNS)
	}
}

// TestPipelineInlineDeclarationOrder: inline sources carry no catalog
// statistics, so the pipeline runs in declaration order — and still
// matches the oracle.
func TestPipelineInlineDeclarationOrder(t *testing.T) {
	eng := NewEngine()
	defer eng.Close()
	r := Gen{N: 8000, Seed: 3}.Build()
	s := Gen{N: 12000, Dist: HighSkew, Seed: 4}.Probe(r, 0.8)
	u := Gen{N: 6000, Seed: 5}.Probe(r, 0.5)
	srcs := []Source{Inline(r), Inline(s), Inline(u)}

	pr, err := eng.JoinPipeline(context.Background(), Pipeline{Sources: srcs}, pipelineTestOpts...)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Ordered {
		t.Error("inline pipeline claims cost-based ordering")
	}
	if want := []int{0, 1, 2}; !reflect.DeepEqual(pr.Order, want) {
		t.Errorf("order = %v, want declaration %v", pr.Order, want)
	}
	if want := oracle.PipelineCount([]Relation{r, s, u}); pr.Final.Matches != want {
		t.Errorf("matches %d, want oracle %d", pr.Final.Matches, want)
	}
	// DeclaredOrder on all-catalog sources pins declaration order too.
	pipelineFixture(t, eng)
	dp, err := eng.JoinPipeline(context.Background(), Pipeline{
		Sources:       []Source{Ref("orders"), Ref("lineitem"), Ref("returns")},
		DeclaredOrder: true,
	}, pipelineTestOpts...)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Ordered || !reflect.DeepEqual(dp.Order, []int{0, 1, 2}) {
		t.Errorf("DeclaredOrder: ordered=%v order=%v", dp.Ordered, dp.Order)
	}
}

// TestPipelineErrors covers the argument and resolution failure modes.
func TestPipelineErrors(t *testing.T) {
	eng := NewEngine()
	defer eng.Close()
	ctx := context.Background()

	if _, err := eng.JoinPipeline(ctx, Pipeline{Sources: []Source{Ref("x")}}); !errors.Is(err, service.ErrPipelineTooShort) {
		t.Errorf("1-source pipeline: err %v, want ErrPipelineTooShort", err)
	}
	if _, err := eng.JoinPipeline(ctx, Pipeline{Sources: []Source{Ref("nope"), Ref("nada")}}); !errors.Is(err, catalog.ErrNotFound) {
		t.Errorf("unknown refs: err %v, want catalog.ErrNotFound", err)
	}
	// An intermediate that does not fit the catalog's residency budget:
	// capacity fits the two 64–72 KB inputs but not the 72 KB intermediate
	// the selectivity-1 first step materializes.
	small := NewEngine(CatalogCapacity(150 << 10))
	defer small.Close()
	r := Gen{N: 8000, Seed: 1}.Build()
	s := Gen{N: 9000, Seed: 2}.Probe(r, 1.0)
	u := Gen{N: 8000, Seed: 6}.Probe(r, 1.0)
	if _, err := small.Load("r", r); err != nil {
		t.Fatal(err)
	}
	if _, err := small.Load("s", s); err != nil {
		t.Fatal(err)
	}
	// The streamed path spills instead of failing: the pipeline completes
	// with the unconstrained matches and reports the spill. The
	// materialized path pins every intermediate and keeps the strict
	// ErrNoSpace contract. Either way the residency budget is back to the
	// two registered relations afterwards.
	res, err := small.JoinPipeline(ctx, Pipeline{
		Sources: []Source{Ref("r"), Ref("s"), Inline(u)},
	}, pipelineTestOpts...)
	if err != nil {
		t.Fatalf("streamed pipeline under budget pressure: %v", err)
	}
	if res.SpilledPartitions == 0 || res.SpillBytes == 0 {
		t.Errorf("overflowing streamed pipeline reports no spill: partitions=%d bytes=%d",
			res.SpilledPartitions, res.SpillBytes)
	}
	if got, want := small.svc.Stats().Catalog.Bytes, r.Bytes()+s.Bytes(); got != want {
		t.Errorf("catalog bytes after spilled pipeline = %d, want %d", got, want)
	}
	_, err = small.JoinPipeline(ctx, Pipeline{
		Sources:     []Source{Ref("r"), Ref("s"), Inline(u)},
		Materialize: true,
	}, pipelineTestOpts...)
	if !errors.Is(err, catalog.ErrNoSpace) {
		t.Errorf("oversized intermediate (materialized): err %v, want catalog.ErrNoSpace", err)
	}
	if got, want := small.svc.Stats().Catalog.Bytes, r.Bytes()+s.Bytes(); got != want {
		t.Errorf("catalog bytes after failed materialized pipeline = %d, want %d", got, want)
	}
}

// TestEngineClosePipelinesInFlight: Close with pipelines mid-flight leaks
// no goroutines — in-flight chains complete on their submitter goroutines
// and the resident workers drain.
func TestEngineClosePipelinesInFlight(t *testing.T) {
	before := runtime.NumGoroutine()

	eng := NewEngine(Workers(4))
	pipelineFixture(t, eng)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := eng.JoinPipeline(context.Background(), Pipeline{Sources: []Source{
				Ref("orders"), Ref("lineitem"), Ref("returns"),
			}}, pipelineTestOpts...)
			if err != nil {
				t.Errorf("in-flight pipeline: %v", err)
			}
		}()
	}
	// Let the pipelines start, then close the engine underneath them.
	time.Sleep(2 * time.Millisecond)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines after Close: %d, want <= %d", g, before)
	}
}
