package apujoin

import (
	"testing"
	"testing/quick"
)

// TestAllVariantsAgreeOnMatches is the top-level correctness property: every
// algorithm × scheme × architecture combination must produce exactly the
// same match count as a naive map join, on every dataset shape.
func TestAllVariantsAgreeOnMatches(t *testing.T) {
	for _, dist := range []Distribution{Uniform, HighSkew} {
		r := Gen{N: 20000, Dist: dist, Seed: 3}.Build()
		s := Gen{N: 25000, Dist: dist, Seed: 4}.Probe(r, 0.7)
		want := NaiveJoinCount(r, s)

		run := func(name string, opt Options) {
			opt.Delta = 0.1
			opt.PilotItems = 4096
			res, err := Join(r, s, opt)
			if err != nil {
				t.Fatalf("%v %s: %v", dist, name, err)
			}
			if res.Matches != want {
				t.Errorf("%v %s: matches %d, want %d", dist, name, res.Matches, want)
			}
		}

		run("SHJ/CPU", Options{Algo: SHJ, Scheme: CPUOnly})
		run("SHJ/GPU", Options{Algo: SHJ, Scheme: GPUOnly})
		run("SHJ/OL", Options{Algo: SHJ, Scheme: OL})
		run("SHJ/DD", Options{Algo: SHJ, Scheme: DD})
		run("SHJ/PL", Options{Algo: SHJ, Scheme: PL})
		run("SHJ/BasicUnit", Options{Algo: SHJ, Scheme: BasicUnit})
		run("PHJ/DD", Options{Algo: PHJ, Scheme: DD})
		run("PHJ/PL", Options{Algo: PHJ, Scheme: PL})
		run("PHJ/PL'", Options{Algo: PHJ, Scheme: CoarsePL})
		run("SHJ/DD/discrete", Options{Algo: SHJ, Scheme: DD, Arch: Discrete})
		run("PHJ/OL/discrete", Options{Algo: PHJ, Scheme: OL, Arch: Discrete})
		run("SHJ/DD/separate", Options{Algo: SHJ, Scheme: DD, SeparateTables: true})
		run("SHJ/PL/grouped", Options{Algo: SHJ, Scheme: PL, Grouping: true})
	}
}

// TestJoinMatchesProperty fuzzes dataset shapes against the naive oracle.
func TestJoinMatchesProperty(t *testing.T) {
	f := func(seed int64, selRaw uint8, phj bool) bool {
		sel := float64(selRaw%101) / 100
		r := Gen{N: 3000, Seed: seed}.Build()
		s := Gen{N: 3000, Seed: seed + 1}.Probe(r, sel)
		opt := Options{Scheme: PL, Delta: 0.25, PilotItems: 1024}
		if phj {
			opt.Algo = PHJ
		}
		res, err := Join(r, s, opt)
		if err != nil {
			return false
		}
		return res.Matches == NaiveJoinCount(r, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPLBeatsSingleDeviceAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale comparison")
	}
	r := Gen{N: 1 << 19, Seed: 5}.Build()
	s := Gen{N: 1 << 19, Seed: 6}.Probe(r, 1.0)
	times := map[string]float64{}
	for name, opt := range map[string]Options{
		"cpu": {Algo: SHJ, Scheme: CPUOnly},
		"gpu": {Algo: SHJ, Scheme: GPUOnly},
		"dd":  {Algo: SHJ, Scheme: DD},
		"pl":  {Algo: SHJ, Scheme: PL},
	} {
		opt.Delta = 0.05
		res, err := Join(r, s, opt)
		if err != nil {
			t.Fatal(err)
		}
		times[name] = res.TotalNS
	}
	// The paper's headline ordering.
	if !(times["pl"] < times["dd"] && times["dd"] < times["gpu"] && times["gpu"] < times["cpu"]) {
		t.Errorf("expected pl < dd < gpu < cpu, got %v", times)
	}
	// And the magnitudes: PL improves over CPU-only and GPU-only by
	// double-digit percentages (paper: up to 53% / 35% / 28%).
	if imp := (times["cpu"] - times["pl"]) / times["cpu"]; imp < 0.3 {
		t.Errorf("PL vs CPU-only improvement only %.0f%%", imp*100)
	}
	if imp := (times["gpu"] - times["pl"]) / times["gpu"]; imp < 0.1 {
		t.Errorf("PL vs GPU-only improvement only %.0f%%", imp*100)
	}
	if imp := (times["dd"] - times["pl"]) / times["dd"]; imp < 0.02 {
		t.Errorf("PL vs DD improvement only %.0f%%", imp*100)
	}
}

func TestExternalJoinFacade(t *testing.T) {
	r := Gen{N: 1 << 16, Seed: 7}.Build()
	s := Gen{N: 1 << 16, Seed: 8}.Probe(r, 1.0)
	opt := Options{Algo: SHJ, Scheme: PL, Delta: 0.25, PilotItems: 2048}
	opt.ZeroCopy = ZeroCopyBuffer(1 << 19)
	if _, err := Join(r, s, opt); err != ErrExceedsZeroCopy {
		t.Fatalf("expected ErrExceedsZeroCopy, got %v", err)
	}
	res, err := JoinExternal(r, s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != NaiveJoinCount(r, s) {
		t.Fatalf("external matches %d", res.Matches)
	}
	if res.PartitionNS <= 0 || res.DataCopyNS <= 0 {
		t.Fatal("external join must report partition and copy time")
	}
}
