GO ?= go

.PHONY: all build test race bench bench-json lint fmt vet check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Parallel-runtime speedup benchmark plus the per-variant join benchmarks.
bench:
	$(GO) test -run=NONE -bench='BenchmarkParallelSpeedup|BenchmarkJoin' -benchmem .

# Machine-readable benchmark artifacts: the parallel-speedup and
# service-throughput trajectories CI archives on every run.
bench-json:
	$(GO) build -o /tmp/apujoin-benchjson ./cmd/benchjson
	$(GO) test -run=NONE -bench=BenchmarkParallelSpeedup -benchmem -benchtime=1x . | /tmp/apujoin-benchjson > BENCH_parallel.json
	$(GO) test -run=NONE -bench=BenchmarkServiceThroughput -benchmem -benchtime=4x ./internal/service | /tmp/apujoin-benchjson > BENCH_service.json
	@echo "wrote BENCH_parallel.json BENCH_service.json"

# Static analysis beyond vet. CI installs staticcheck; locally the target
# degrades to a notice when the binary is absent (no network assumption).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Everything CI runs, in the same order.
check: fmt vet lint build race
