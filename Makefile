GO ?= go

.PHONY: all build test race bench fmt vet check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Parallel-runtime speedup benchmark plus the per-variant join benchmarks.
bench:
	$(GO) test -run=NONE -bench='BenchmarkParallelSpeedup|BenchmarkJoin' -benchmem .

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Everything CI runs, in the same order.
check: fmt vet build race
