GO ?= go

# Pinned static-analysis toolchain: @latest is not reproducible across CI
# runs, so the versions live here and CI caches the installed binaries
# keyed on them.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

# apulint is built from the tree (cmd/apulint): the analyzers ARE the
# contracts under review, so there is nothing external to pin.
APULINT := /tmp/apujoin-apulint

# Minimum total test coverage (percent) the coverage target enforces.
# Raise it as coverage grows; never lower it to merge.
COVERAGE_FLOOR ?= 80

# Fractional slowdown tolerated by the benchmark-regression gate.
BENCH_TOL ?= 0.25

BENCHJSON := /tmp/apujoin-benchjson

.PHONY: all build test race bench bench-json bench-check bench-refresh coverage fuzz lint lint-apulint lint-install lint-install-staticcheck lint-install-govulncheck fmt vet docs-check check

# Budget for the randomized join-oracle fuzz smoke (the committed seed
# corpus under testdata/fuzz additionally runs as plain unit tests).
FUZZ_TIME ?= 30s

all: build

build:
	$(GO) build ./...

# -shuffle=on randomizes test (and subtest-independent) execution order
# per run so order-dependent tests cannot hide; a failure prints the
# shuffle seed for reproduction (go test -shuffle=<seed>).
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

# Parallel-runtime speedup benchmark plus the per-variant join benchmarks.
bench:
	$(GO) test -run=NONE -bench='BenchmarkParallelSpeedup|BenchmarkJoin' -benchmem .

# Machine-readable benchmark artifacts: the parallel-speedup,
# service-throughput and planner-amortization trajectories CI archives on
# every run and the regression gate (bench-check) diffs against.
bench-json:
	$(GO) build -o $(BENCHJSON) ./cmd/benchjson
	$(GO) test -run=NONE -bench=BenchmarkParallelSpeedup -benchmem -benchtime=1x . | $(BENCHJSON) > BENCH_parallel.json
	$(GO) test -run=NONE -bench='BenchmarkServiceThroughput|BenchmarkCatalogReuse|BenchmarkShardedScaleout' -benchmem -benchtime=4x ./internal/service | $(BENCHJSON) > BENCH_service.json
	( $(GO) test -run=NONE -bench='BenchmarkPlannerAmortization|BenchmarkPipelineOrdering' -benchmem -benchtime=3x ./internal/plan; \
	  $(GO) test -run=NONE -bench='BenchmarkPipelineStreaming|BenchmarkSpillVsResident' -benchmem -benchtime=3x . ) | $(BENCHJSON) > BENCH_plan.json
	@echo "wrote BENCH_parallel.json BENCH_service.json BENCH_plan.json"

# CI benchmark-regression gate: rerun the benchmarks into /tmp and diff
# them against the committed BENCH_*.json baselines; a gated time metric
# more than BENCH_TOL slower fails the build (deterministic sim_ns/op
# always gates; host ns/op only between like machines — see benchjson).
# The streamed pipeline's peak_bytes/op and the spill benchmark's
# spill_bytes/op gate with zero tolerance: the resident-footprint
# advantage and the spill decomposition are exact functions of data and
# budget and must never drift. Refresh the baselines with `make
# bench-json` when a slowdown is intended and reviewed.
bench-check:
	$(GO) build -o $(BENCHJSON) ./cmd/benchjson
	$(GO) test -run=NONE -bench=BenchmarkParallelSpeedup -benchmem -benchtime=1x . | $(BENCHJSON) > /tmp/apujoin-bench-parallel.json
	$(GO) test -run=NONE -bench='BenchmarkServiceThroughput|BenchmarkCatalogReuse|BenchmarkShardedScaleout' -benchmem -benchtime=4x ./internal/service | $(BENCHJSON) > /tmp/apujoin-bench-service.json
	( $(GO) test -run=NONE -bench='BenchmarkPlannerAmortization|BenchmarkPipelineOrdering' -benchmem -benchtime=3x ./internal/plan; \
	  $(GO) test -run=NONE -bench='BenchmarkPipelineStreaming|BenchmarkSpillVsResident' -benchmem -benchtime=3x . ) | $(BENCHJSON) > /tmp/apujoin-bench-plan.json
	$(BENCHJSON) -compare BENCH_parallel.json /tmp/apujoin-bench-parallel.json -tol $(BENCH_TOL)
	$(BENCHJSON) -compare BENCH_service.json /tmp/apujoin-bench-service.json -tol $(BENCH_TOL)
	$(BENCHJSON) -compare BENCH_plan.json /tmp/apujoin-bench-plan.json -tol $(BENCH_TOL) -tol-metric peak_bytes/op=0 -tol-metric spill_bytes/op=0

# Promote the JSONs bench-check just measured to the baseline filenames
# without re-running the benchmarks (CI runs bench-check first, then this
# to refresh the uploaded artifact; committing the result is how an
# intended slowdown updates the baselines).
bench-refresh:
	cp /tmp/apujoin-bench-parallel.json BENCH_parallel.json
	cp /tmp/apujoin-bench-service.json BENCH_service.json
	cp /tmp/apujoin-bench-plan.json BENCH_plan.json

# Explore new inputs against the brute-force join oracle: every algorithm ×
# scheme combination and 3–4-relation pipelines must match it exactly.
# A failure writes the input to testdata/fuzz/FuzzJoinAgainstOracle/ —
# commit it as a permanent regression seed.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzJoinAgainstOracle -fuzztime=$(FUZZ_TIME) .

# Coverage with an enforced floor: per-package lines from go test, the
# total from the merged profile, fail below COVERAGE_FLOOR percent. The
# per-package breakdown is always printed; a run below the floor repeats
# it so the failing job shows which packages dragged the total down. When
# $GITHUB_STEP_SUMMARY is set (CI), the breakdown lands in the job summary
# as a Markdown table.
coverage:
	@$(GO) test -coverprofile=coverage.out -covermode=atomic ./... > /tmp/apujoin-coverage.txt 2>&1 \
		|| { cat /tmp/apujoin-coverage.txt; exit 1; }
	@cat /tmp/apujoin-coverage.txt
	@$(GO) tool cover -func=coverage.out | tail -n 1
	@if [ -n "$$GITHUB_STEP_SUMMARY" ]; then \
		{ echo "### Coverage by package (floor $(COVERAGE_FLOOR)%)"; echo; \
		  echo "| package | coverage |"; echo "|---|---|"; \
		  awk '/^ok /{cov="-"; for(i=1;i<=NF;i++) if($$i=="coverage:") cov=$$(i+1); print "| "$$2" | "cov" |"}' /tmp/apujoin-coverage.txt; \
		  echo; $(GO) tool cover -func=coverage.out | tail -n 1; } >> "$$GITHUB_STEP_SUMMARY"; \
	fi
	@total=$$($(GO) tool cover -func=coverage.out | tail -n 1 | awk '{gsub(/%/,"",$$NF); print $$NF}'); \
	if awk "BEGIN{exit !($$total < $(COVERAGE_FLOOR))}"; then \
		echo "coverage $$total% is below the floor of $(COVERAGE_FLOOR)%"; \
		echo "per-package breakdown:"; grep '^ok ' /tmp/apujoin-coverage.txt; exit 1; \
	else \
		echo "coverage $$total% meets the floor of $(COVERAGE_FLOOR)%"; \
	fi

# Static analysis beyond vet: the project's own analyzer suite (apulint,
# always — it builds from the tree), then staticcheck and govulncheck
# (pinned; CI installs them, locally the targets degrade to a notice when
# a binary is absent — no network assumption).
lint: lint-apulint
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (make lint-install)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (make lint-install)"; \
	fi

# The determinism/parallelism/envelope contracts, enforced at compile
# time (see internal/analysis). Any finding — including a suppression
# pragma without a reason — fails the build.
lint-apulint:
	$(GO) build -o $(APULINT) ./cmd/apulint
	$(APULINT) ./...

lint-install: lint-install-staticcheck lint-install-govulncheck

# Split targets so CI can restore each binary from its own version-keyed
# cache and install only the one that missed.
lint-install-staticcheck:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)

lint-install-govulncheck:
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Documentation gate: every relative link and heading fragment in the
# repository's Markdown must resolve (see cmd/docscheck). Runs in CI's
# docs job so documentation cannot silently drift from the tree.
docs-check:
	$(GO) run ./cmd/docscheck

# Everything CI runs, in the same order.
check: fmt vet lint build race docs-check
